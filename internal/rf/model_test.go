package rf

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// stump returns a single-split tree: x[feat] <= split ? classL : classR.
func stump(feat int32, split float32, classL, classR int32) Tree {
	return Tree{Nodes: []Node{
		{Feature: feat, Split: split, Left: 1, Right: 2, LeftFraction: 0.5},
		{Feature: LeafFeature, Class: classL},
		{Feature: LeafFeature, Class: classR},
	}}
}

// deepTree builds a right-leaning chain of the given depth for depth and
// validation tests.
func deepTree(depth int) Tree {
	var nodes []Node
	for d := 0; d < depth; d++ {
		nodes = append(nodes, Node{
			Feature: 0, Split: float32(d),
			Left:  int32(len(nodes) + 1),
			Right: int32(len(nodes) + 2),
		})
		nodes = append(nodes, Node{Feature: LeafFeature, Class: int32(d % 2)})
	}
	nodes = append(nodes, Node{Feature: LeafFeature, Class: 1})
	// Fix child indices: each inner node i sits at 2d, leaf at 2d+1, and
	// the right child is the next inner node (or the final leaf).
	for d := 0; d < depth; d++ {
		nodes[2*d].Left = int32(2*d + 1)
		nodes[2*d].Right = int32(2*d + 2)
	}
	return Tree{Nodes: nodes}
}

func TestStumpPredict(t *testing.T) {
	tr := stump(0, 1.5, 7, 9)
	if got := tr.Predict([]float32{1.0}); got != 7 {
		t.Errorf("Predict(1.0) = %d, want 7", got)
	}
	if got := tr.Predict([]float32{1.5}); got != 7 {
		t.Errorf("Predict(1.5) = %d, want 7 (<= is inclusive)", got)
	}
	if got := tr.Predict([]float32{2.0}); got != 9 {
		t.Errorf("Predict(2.0) = %d, want 9", got)
	}
}

func TestTreeDepthAndLeaves(t *testing.T) {
	leaf := Tree{Nodes: []Node{{Feature: LeafFeature, Class: 3}}}
	if leaf.Depth() != 0 || leaf.NumLeaves() != 1 {
		t.Errorf("leaf tree: depth=%d leaves=%d", leaf.Depth(), leaf.NumLeaves())
	}
	if (&Tree{}).Depth() != 0 {
		t.Error("empty tree depth should be 0")
	}
	s := stump(0, 0, 0, 1)
	if s.Depth() != 1 || s.NumLeaves() != 2 {
		t.Errorf("stump: depth=%d leaves=%d", s.Depth(), s.NumLeaves())
	}
	d := deepTree(5)
	if d.Depth() != 5 {
		t.Errorf("deepTree(5).Depth() = %d", d.Depth())
	}
	if d.NumLeaves() != 6 {
		t.Errorf("deepTree(5).NumLeaves() = %d", d.NumLeaves())
	}
}

func TestTreeValidate(t *testing.T) {
	good := stump(0, 1.0, 0, 1)
	if err := good.Validate(1, 2); err != nil {
		t.Errorf("valid stump rejected: %v", err)
	}
	deep := deepTree(10)
	if err := deep.Validate(1, 2); err != nil {
		t.Errorf("valid deep tree rejected: %v", err)
	}

	cases := []struct {
		name string
		tree Tree
		want string
	}{
		{"empty", Tree{}, "empty tree"},
		{"nan split", Tree{Nodes: []Node{
			{Feature: 0, Split: float32(math.NaN()), Left: 1, Right: 2},
			{Feature: LeafFeature}, {Feature: LeafFeature},
		}}, "NaN split"},
		{"feature range", Tree{Nodes: []Node{
			{Feature: 5, Split: 0, Left: 1, Right: 2},
			{Feature: LeafFeature}, {Feature: LeafFeature},
		}}, "feature 5 out of range"},
		{"class range", Tree{Nodes: []Node{{Feature: LeafFeature, Class: 9}}}, "class 9 out of range"},
		{"child range", Tree{Nodes: []Node{
			{Feature: 0, Split: 0, Left: 1, Right: 5},
			{Feature: LeafFeature}, {Feature: LeafFeature},
		}}, "child index 5 out of range"},
		{"root as child", Tree{Nodes: []Node{
			{Feature: 0, Split: 0, Left: 1, Right: 0},
			{Feature: LeafFeature}, {Feature: LeafFeature},
		}}, "out of range"},
		{"double ref", Tree{Nodes: []Node{
			{Feature: 0, Split: 0, Left: 1, Right: 1},
			{Feature: LeafFeature}, {Feature: LeafFeature},
		}}, "referenced"},
		{"bad fraction", Tree{Nodes: []Node{
			{Feature: 0, Split: 0, Left: 1, Right: 2, LeftFraction: 1.5},
			{Feature: LeafFeature}, {Feature: LeafFeature},
		}}, "left fraction"},
	}
	for _, c := range cases {
		err := c.tree.Validate(1, 2)
		if err == nil {
			t.Errorf("%s: invalid tree accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestForestMajorityVote(t *testing.T) {
	f := &Forest{
		NumFeatures: 1,
		NumClasses:  3,
		Trees: []Tree{
			stump(0, 0.5, 0, 1),
			stump(0, 0.5, 0, 2),
			stump(0, 1.5, 1, 2),
		},
	}
	// x=0: votes 0,0,1 -> class 0 wins 2:1.
	if got := f.Predict([]float32{0}); got != 0 {
		t.Errorf("Predict(0) = %d, want 0", got)
	}
	// x=1: votes 1,2,1 -> class 1 wins 2:1.
	if got := f.Predict([]float32{1}); got != 1 {
		t.Errorf("Predict(1) = %d, want 1", got)
	}
	// x=2: votes 1,2,2 -> class 2 wins 2:1.
	if got := f.Predict([]float32{2}); got != 2 {
		t.Errorf("Predict(2) = %d, want 2", got)
	}
}

func TestForestTieBreaksLow(t *testing.T) {
	f := &Forest{
		NumFeatures: 1,
		NumClasses:  2,
		Trees:       []Tree{stump(0, 0.5, 0, 1), stump(0, 0.5, 1, 0)},
	}
	// Both inputs produce a 1:1 tie; the lower class index must win.
	if got := f.Predict([]float32{0}); got != 0 {
		t.Errorf("tie broke to %d, want 0", got)
	}
	if got := f.Predict([]float32{1}); got != 0 {
		t.Errorf("tie broke to %d, want 0", got)
	}
}

func TestPredictVotes(t *testing.T) {
	f := &Forest{
		NumFeatures: 1,
		NumClasses:  3,
		Trees:       []Tree{stump(0, 0.5, 0, 1), stump(0, 0.5, 0, 2)},
	}
	votes := f.PredictVotes([]float32{0}, nil)
	if len(votes) != 3 || votes[0] != 2 || votes[1] != 0 || votes[2] != 0 {
		t.Errorf("votes = %v", votes)
	}
	// Buffer reuse must reset previous counts.
	votes = f.PredictVotes([]float32{1}, votes)
	if votes[0] != 0 || votes[1] != 1 || votes[2] != 1 {
		t.Errorf("votes after reuse = %v", votes)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]int32{1, 3, 2}) != 1 {
		t.Error("Argmax broken")
	}
	if Argmax([]int32{3, 3, 3}) != 0 {
		t.Error("Argmax must tie-break low")
	}
	if Argmax([]int32{5}) != 0 {
		t.Error("Argmax single element")
	}
}

func TestForestValidate(t *testing.T) {
	good := &Forest{NumFeatures: 1, NumClasses: 2, Trees: []Tree{stump(0, 0, 0, 1)}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid forest rejected: %v", err)
	}
	bad := []*Forest{
		{NumFeatures: 0, NumClasses: 2, Trees: []Tree{stump(0, 0, 0, 1)}},
		{NumFeatures: 1, NumClasses: 0, Trees: []Tree{stump(0, 0, 0, 1)}},
		{NumFeatures: 1, NumClasses: 2},
		{NumFeatures: 1, NumClasses: 2, Trees: []Tree{stump(3, 0, 0, 1)}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("invalid forest %d accepted", i)
		}
	}
}

func TestForestCounts(t *testing.T) {
	f := &Forest{
		NumFeatures: 1, NumClasses: 2,
		Trees: []Tree{stump(0, 0, 0, 1), deepTree(4)},
	}
	if got := f.NumNodes(); got != 3+len(deepTree(4).Nodes) {
		t.Errorf("NumNodes = %d", got)
	}
	if got := f.MaxDepth(); got != 4 {
		t.Errorf("MaxDepth = %d", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f := &Forest{
		NumFeatures: 2, NumClasses: 2,
		Trees: []Tree{stump(1, -2.935417, 0, 1), deepTree(3)},
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFeatures != 2 || got.NumClasses != 2 || len(got.Trees) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Trees[0].Nodes[0].Split != -2.935417 {
		t.Errorf("split value lost: %v", got.Trees[0].Nodes[0].Split)
	}
	for _, x := range [][]float32{{-5, -5}, {0, 0}, {5, 5}} {
		if f.Predict(x) != got.Predict(x) {
			t.Errorf("round-tripped forest predicts differently at %v", x)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"num_features":0,"num_classes":2,"trees":[]}`)); err == nil {
		t.Error("structurally invalid forest accepted")
	}
}

func TestAccuracy(t *testing.T) {
	f := &Forest{NumFeatures: 1, NumClasses: 2, Trees: []Tree{stump(0, 0.5, 0, 1)}}
	x := [][]float32{{0}, {1}, {0}, {1}}
	y := []int32{0, 1, 1, 1} // third row mislabeled
	if got := Accuracy(f, x, y); got != 0.75 {
		t.Errorf("Accuracy = %v, want 0.75", got)
	}
	if got := Accuracy(f, nil, nil); got != 0 {
		t.Errorf("Accuracy on empty set = %v", got)
	}
}
