package flint

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestFacadeWorkflow runs the package-comment workflow end to end.
func TestFacadeWorkflow(t *testing.T) {
	data, err := GenerateDataset("magic", 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, test := data.Split(0.75, 1)
	forest, err := Train(train, TrainConfig{NumTrees: 10, MaxDepth: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewFLIntEngine(forest)
	if err != nil {
		t.Fatal(err)
	}
	floatEngine, err := NewFloatEngine(forest)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range test.Features {
		if engine.Predict(x) != forest.Predict(x) || floatEngine.Predict(x) != forest.Predict(x) {
			t.Fatalf("facade engines diverge at row %d", i)
		}
	}
	acc := Accuracy(engine, test.Features, test.Labels)
	if acc < 0.6 {
		t.Errorf("accuracy %.3f suspiciously low", acc)
	}
}

func TestFacadeOperator(t *testing.T) {
	if !GE32(2, 1) || GE32(1, 2) || !GE32(2, 2) {
		t.Error("GE32 broken")
	}
	if !LE32(-5, -4) || LE32(-4, -5) {
		t.Error("LE32 broken")
	}
	if !GT32(3, 2) || !LT32(2, 3) {
		t.Error("GT32/LT32 broken")
	}
	if !GE64(math.Pi, 3) || !LE64(3, math.Pi) {
		t.Error("64-bit operators broken")
	}
	if Compare32(1, 2) != -1 || Compare64(2, 1) != 1 {
		t.Error("Compare broken")
	}
	sp := MustEncodeSplit32(-2.935417)
	if !sp.LE(FeatureBits32(-3)) || sp.LE(FeatureBits32(-2)) {
		t.Error("split predicate broken via facade")
	}
	if _, err := EncodeSplit32(float32(math.NaN())); err == nil {
		t.Error("EncodeSplit32 must reject NaN")
	}
	if _, err := EncodeSplit64(math.NaN()); err == nil {
		t.Error("EncodeSplit64 must reject NaN")
	}
	sp64 := MustEncodeSplit64(1.5)
	if !sp64.LE(FeatureBits64(1.5)) || sp64.LE(FeatureBits64(1.6)) {
		t.Error("Split64 predicate broken via facade")
	}
	xi := EncodeFeatures32(nil, []float32{1, -2})
	if len(xi) != 2 || xi[0] != FeatureBits32(1) {
		t.Error("EncodeFeatures32 broken")
	}
	if !SoftLE32(1, 2) || SoftLE32(2, 1) {
		t.Error("SoftLE32 broken")
	}
}

func TestFacadeReorderAndCodegen(t *testing.T) {
	data, err := GenerateDataset("wine", 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := Train(data, TrainConfig{NumTrees: 3, MaxDepth: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := Reorder(forest)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range data.Features[:50] {
		if grouped.Predict(x) != forest.Predict(x) {
			t.Fatal("Reorder changed predictions")
		}
	}
	var buf bytes.Buffer
	if err := GenerateCode(&buf, forest, CodegenOptions{Language: LangC, Variant: VariantFLInt}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "forest_predict") {
		t.Error("generated C lacks predict entry point")
	}
	buf.Reset()
	if err := GenerateCode(&buf, forest, CodegenOptions{
		Language: LangARMv8, Variant: VariantFLInt, Flavor: FlavorHand,
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "movz") {
		t.Error("generated ARM lacks immediates")
	}
}

func TestFacadeJSONAndSoftFloat(t *testing.T) {
	data, err := GenerateDataset("eye", 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := Train(data, TrainConfig{NumTrees: 2, MaxDepth: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := forest.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadForestJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	soft, err := NewSoftFloatEngine(back)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := NewPrecodedEngine(back)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := TrainTree(data, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range data.Features[:50] {
		want := forest.Predict(x)
		if soft.Predict(x) != want || pre.Predict(x) != want {
			t.Fatal("facade engines diverge after JSON round trip")
		}
		_ = tree.Predict(x)
	}
	if len(DatasetNames()) != 5 {
		t.Error("DatasetNames must list the paper's five workloads")
	}
}

// TestFacadeAdaptiveServing runs the exported reservoir → recalibrate →
// persist lifecycle through the facade: sampled traffic drives
// Recalibrate, SaveCalibration/LoadCalibration round-trips onto a fresh
// engine, and the gates-only persistence helpers round-trip too.
func TestFacadeAdaptiveServing(t *testing.T) {
	defer SetInterleaveGates(CurrentInterleaveGates())
	data, err := GenerateDataset("magic", 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	train, test := data.Split(0.75, 1)
	forest, err := Train(train, TrainConfig{NumTrees: 10, MaxDepth: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewFlatEngineVariant(forest, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcherSampled(engine, 2, 0, 64, 1)
	defer b.Close()
	out := b.Predict(test.Features, nil)
	for i, x := range test.Features {
		if out[i] != forest.Predict(x) {
			t.Fatalf("batcher diverges at row %d", i)
		}
	}
	if sampled, seen := b.SampleStats(); sampled == 0 || seen != uint64(len(test.Features)) {
		t.Fatalf("reservoir stats %d/%d after serving %d rows", sampled, seen, len(test.Features))
	}
	if w := b.Recalibrate(0); w != engine.Interleave() {
		t.Errorf("Recalibrate returned %d, engine holds %d", w, engine.Interleave())
	}

	var rec bytes.Buffer
	if err := engine.SaveCalibration(&rec, b.SampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	engine2, err := NewFlatEngineVariant(forest, FlatCompact)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := engine2.LoadCalibration(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if engine2.Interleave() != engine.Interleave() {
		t.Errorf("warm-started width %d, want %d", engine2.Interleave(), engine.Interleave())
	}
	if loaded.Fingerprint != engine2.Fingerprint() {
		t.Errorf("fingerprint mismatch after round trip")
	}
	b2 := NewBatcher(engine2, 1)
	defer b2.Close()
	if n := b2.SeedSample(loaded.Rows); n != len(loaded.Rows) {
		t.Errorf("seeded %d of %d persisted rows", n, len(loaded.Rows))
	}

	g := CurrentInterleaveGates()
	var gbuf bytes.Buffer
	if err := WriteGatesJSON(&gbuf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGatesJSON(&gbuf)
	if err != nil {
		t.Fatal(err)
	}
	if back != g {
		t.Errorf("gates JSON round trip = %+v, want %+v", back, g)
	}
}
