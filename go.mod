module flint

go 1.22
