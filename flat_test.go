// Differential coverage for the forest-arena execution engine at the
// facade level: on every paper workload, every FlatEngine variant —
// compiled from the original and the CAGS-reordered layout — must
// predict identically to the per-tree FLInt and float engines, through
// both the single-row and the blocked batch entry points.
package flint_test

import (
	"testing"

	"flint"
)

func TestFlatEngineMatchesPerTreeEnginesOnAllWorkloads(t *testing.T) {
	for _, name := range flint.DatasetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			data, err := flint.GenerateDataset(name, 300, 7)
			if err != nil {
				t.Fatal(err)
			}
			forest, err := flint.Train(data, flint.TrainConfig{NumTrees: 5, MaxDepth: 7, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			grouped, err := flint.Reorder(forest)
			if err != nil {
				t.Fatal(err)
			}
			refInt, err := flint.NewFLIntEngine(forest)
			if err != nil {
				t.Fatal(err)
			}
			refFloat, err := flint.NewFloatEngine(forest)
			if err != nil {
				t.Fatal(err)
			}

			for _, layout := range []struct {
				tag string
				f   *flint.Forest
			}{{"original", forest}, {"cags", grouped}} {
				for _, v := range []flint.FlatVariant{flint.FlatFLInt, flint.FlatFloat32, flint.FlatPrecoded, flint.FlatCompact} {
					e, err := flint.NewFlatEngineVariant(layout.f, v)
					if err != nil {
						t.Fatal(err)
					}
					if v == flint.FlatCompact {
						if ok, reason := flint.Compactable(layout.f); !ok {
							t.Fatalf("workload forest not compactable: %s", reason)
						}
						if e.Variant() != flint.FlatCompact {
							t.Fatalf("compact request fell back to %v", e.Variant())
						}
					}
					batch := flint.PredictBatch(e, data.Features, 2)
					for i, x := range data.Features {
						want := refInt.Predict(x)
						if alt := refFloat.Predict(x); alt != want {
							t.Fatalf("reference engines disagree on row %d: %d vs %d", i, want, alt)
						}
						if got := e.Predict(x); got != want {
							t.Fatalf("%s/%s row %d: single-row got %d want %d", layout.tag, e.Name(), i, got, want)
						}
						if batch[i] != want {
							t.Fatalf("%s/%s row %d: batch got %d want %d", layout.tag, e.Name(), i, batch[i], want)
						}
					}
				}
			}
		})
	}
}

func TestFacadeBatcher(t *testing.T) {
	data, err := flint.GenerateDataset("wine", 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := flint.Train(data, flint.TrainConfig{NumTrees: 4, MaxDepth: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e, err := flint.NewFlatEngine(forest)
	if err != nil {
		t.Fatal(err)
	}
	b := flint.NewBatcher(e, 2)
	defer b.Close()
	out := b.Predict(data.Features, nil)
	for i, x := range data.Features {
		if want := forest.Predict(x); out[i] != want {
			t.Fatalf("row %d: got %d want %d", i, out[i], want)
		}
	}
}
